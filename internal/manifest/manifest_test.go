package manifest

import (
	"fmt"
	"testing"
	"testing/quick"

	"iamdb/internal/kv"
	"iamdb/internal/vfs"
)

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	e := &Edit{
		Added: []NodeRecord{
			{Level: 1, FileNum: 7, Lo: []byte("a"), Hi: []byte("m")},
			{Level: 2, FileNum: 9, Lo: []byte("n"), Hi: []byte("z")},
		},
		Deleted:  []NodeRef{{Level: 1, FileNum: 3}},
		NextFile: 10, SetNextFile: true,
		LastSeq: 999, SetLastSeq: true,
		LogNum: 4, SetLogNum: true,
		NumLevels: 5, SetLevels: true,
	}
	got, err := decodeEdit(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Added) != 2 || len(got.Deleted) != 1 {
		t.Fatalf("added=%d deleted=%d", len(got.Added), len(got.Deleted))
	}
	if got.Added[0].FileNum != 7 || string(got.Added[0].Lo) != "a" || string(got.Added[1].Hi) != "z" {
		t.Fatalf("added: %+v", got.Added)
	}
	if !got.SetNextFile || got.NextFile != 10 || !got.SetLastSeq || got.LastSeq != 999 {
		t.Fatalf("scalars: %+v", got)
	}
	if !got.SetLogNum || got.LogNum != 4 || !got.SetLevels || got.NumLevels != 5 {
		t.Fatalf("scalars2: %+v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeEdit([]byte{99}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := decodeEdit([]byte{tagAdded, 1}); err == nil {
		t.Error("truncated added accepted")
	}
}

func TestStateApply(t *testing.T) {
	st := &State{}
	if err := st.Apply(&Edit{Added: []NodeRecord{
		{Level: 1, FileNum: 2, Lo: []byte("m"), Hi: []byte("p")},
		{Level: 1, FileNum: 1, Lo: []byte("a"), Hi: []byte("c")},
	}}); err != nil {
		t.Fatal(err)
	}
	if len(st.Levels[1]) != 2 || st.Levels[1][0].FileNum != 1 {
		t.Fatalf("sort by Lo: %+v", st.Levels[1])
	}
	if err := st.Apply(&Edit{Deleted: []NodeRef{{Level: 1, FileNum: 1}}}); err != nil {
		t.Fatal(err)
	}
	if len(st.Levels[1]) != 1 || st.Levels[1][0].FileNum != 2 {
		t.Fatalf("delete: %+v", st.Levels[1])
	}
	if err := st.Apply(&Edit{Deleted: []NodeRef{{Level: 1, FileNum: 42}}}); err == nil {
		t.Error("deleting absent file must fail")
	}
	if err := st.Apply(&Edit{Deleted: []NodeRef{{Level: 9, FileNum: 1}}}); err == nil {
		t.Error("deleting on absent level must fail")
	}
}

func TestCreateAppendReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	st := &State{NextFile: 1, LastSeq: 0, NumLevels: 3}
	log, err := Create(fs, "MANIFEST", st)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		e := &Edit{
			Added:    []NodeRecord{{Level: 1, FileNum: i, Lo: []byte{byte('a' + i)}, Hi: []byte{byte('a' + i)}}},
			NextFile: i + 1, SetNextFile: true,
			LastSeq: kv.Seq(i * 100), SetLastSeq: true,
		}
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// Delete half.
	for i := uint64(1); i <= 5; i++ {
		if err := log.Append(&Edit{Deleted: []NodeRef{{Level: 1, FileNum: i}}}); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	got, err := Replay(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if got.NextFile != 11 || got.LastSeq != 1000 || got.NumLevels != 3 {
		t.Fatalf("state: %+v", got)
	}
	if len(got.Levels[1]) != 5 {
		t.Fatalf("level1 has %d nodes", len(got.Levels[1]))
	}
	for i, n := range got.Levels[1] {
		if n.FileNum != uint64(i+6) {
			t.Fatalf("node %d filenum %d", i, n.FileNum)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	fs := vfs.NewMemFS()
	log, _ := Create(fs, "MANIFEST", &State{NextFile: 1})
	log.Append(&Edit{Added: []NodeRecord{{Level: 0, FileNum: 1, Lo: []byte("a"), Hi: []byte("b")}}})
	log.Close()
	f, _ := fs.Open("MANIFEST")
	size, _ := f.Size()
	f.Truncate(size - 3) // tear the last record
	f.Close()
	st, err := Replay(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	// The torn edit is dropped; the snapshot survives.
	if st.NextFile != 1 {
		t.Fatalf("state after torn tail: %+v", st)
	}
	if len(st.Levels) != 0 {
		t.Fatalf("torn edit applied: %+v", st.Levels)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := &State{NextFile: 42, LastSeq: 7, LogNum: 3, NumLevels: 4}
	st.Levels = [][]NodeRecord{
		nil,
		{{Level: 1, FileNum: 1, Lo: []byte("a"), Hi: []byte("b")}},
		{{Level: 2, FileNum: 2, Lo: []byte("c"), Hi: []byte("d")}, {Level: 2, FileNum: 3, Lo: []byte("e"), Hi: []byte("f")}},
	}
	snap := st.Snapshot()
	st2 := &State{}
	if err := st2.Apply(snap); err != nil {
		t.Fatal(err)
	}
	if st2.NextFile != 42 || st2.LastSeq != 7 || st2.LogNum != 3 || st2.NumLevels != 4 {
		t.Fatalf("scalars: %+v", st2)
	}
	if len(st2.Levels[1]) != 1 || len(st2.Levels[2]) != 2 {
		t.Fatalf("levels: %+v", st2.Levels)
	}
}

func TestEditQuickRoundTrip(t *testing.T) {
	f := func(lvl uint8, fn uint64, lo, hi []byte, seq uint64) bool {
		e := &Edit{
			Added:   []NodeRecord{{Level: int(lvl % 8), FileNum: fn, Lo: lo, Hi: hi}},
			LastSeq: kv.Seq(seq & uint64(kv.MaxSeq)), SetLastSeq: true,
		}
		got, err := decodeEdit(e.encode())
		if err != nil || len(got.Added) != 1 {
			return false
		}
		a := got.Added[0]
		return a.Level == int(lvl%8) && a.FileNum == fn &&
			string(a.Lo) == string(lo) && string(a.Hi) == string(hi) &&
			got.LastSeq == kv.Seq(seq&uint64(kv.MaxSeq))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyLevels(t *testing.T) {
	fs := vfs.NewMemFS()
	log, _ := Create(fs, "M", &State{})
	var e Edit
	for lvl := 0; lvl < 7; lvl++ {
		for i := 0; i < 10; i++ {
			e.Added = append(e.Added, NodeRecord{
				Level: lvl, FileNum: uint64(lvl*100 + i),
				Lo: []byte(fmt.Sprintf("%02d", i)), Hi: []byte(fmt.Sprintf("%02d~", i)),
			})
		}
	}
	log.Append(&e)
	log.Close()
	st, err := Replay(fs, "M")
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl < 7; lvl++ {
		if len(st.Levels[lvl]) != 10 {
			t.Fatalf("level %d: %d nodes", lvl, len(st.Levels[lvl]))
		}
	}
}
