package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicpub guards the lock-free publication protocol the memtable and
// the DB's read snapshot rely on: a struct handed to readers through an
// atomic.Pointer[T] is immutable after the Store/CompareAndSwap that
// publishes it.  Every plain (non-atomic) field must be fully written
// *before* publication; a later write races with readers that reached
// the value through an atomic load.
//
// The pass collects every named type T that appears as the pointee of
// an atomic.Pointer[T] field (directly or inside an array/slice) and
// flags assignments and ++/-- on fields of such types, unless the value
// being written is provably fresh within the function: built there by a
// &T{...} composite literal, a new(T), or a same-package new*/New*
// constructor, and therefore not yet published.  Anything reached
// through another expression — an atomic Load(), a struct field, a
// parameter — cannot be proven unpublished and is reported.
func atomicpub(p *pkg, emit func(diag)) {
	pub := publishedTypes(p)
	if len(pub) == 0 {
		return
	}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPublishedWrites(p, emit, fn, pub)
		}
	}
}

// publishedTypes returns the named types used as atomic.Pointer
// pointees anywhere in the package's struct fields.
func publishedTypes(p *pkg) map[*types.TypeName]bool {
	pub := make(map[*types.TypeName]bool)
	for _, obj := range p.info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			collectPointees(st.Field(i).Type(), pub)
		}
	}
	return pub
}

// collectPointees records the type argument of every atomic.Pointer
// instantiation reachable through arrays and slices of t.
func collectPointees(t types.Type, pub map[*types.TypeName]bool) {
	switch tt := t.(type) {
	case *types.Array:
		collectPointees(tt.Elem(), pub)
	case *types.Slice:
		collectPointees(tt.Elem(), pub)
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
			return
		}
		args := tt.TypeArgs()
		if args == nil || args.Len() != 1 {
			return
		}
		if n, ok := derefType(args.At(0)).(*types.Named); ok {
			pub[n.Obj()] = true
		}
	}
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// checkPublishedWrites flags field writes on published types within one
// function, allowing writes through locals that hold a fresh value.
func checkPublishedWrites(p *pkg, emit func(diag), fn *ast.FuncDecl, pub map[*types.TypeName]bool) {
	fresh := freshLocals(p, fn)
	check := func(lhs ast.Expr, verb string) {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := p.info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		named, ok := derefType(selection.Recv()).(*types.Named)
		if !ok || !pub[named.Obj()] {
			return
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && fresh[identObj(p, id)] {
			return
		}
		emit(diag{
			pass: "atomicpub",
			pos:  p.fset.Position(sel.Pos()),
			msg: fmt.Sprintf("%s field %s.%s: %s is published via atomic.Pointer and shared with lock-free readers; write fields only on a fresh value before publication, or make the field atomic",
				verb, named.Obj().Name(), selection.Obj().Name(), named.Obj().Name()),
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(lhs, "assignment to")
			}
		case *ast.IncDecStmt:
			check(s.X, "increment of")
		}
		return true
	})
}

// freshLocals returns the local variables of fn assigned a provably
// unpublished value somewhere in the function: a composite literal (or
// its address), a new(T), or the result of a same-package new*/New*
// constructor.  The analysis is not flow-sensitive — a lint, not a
// proof — but a variable that only ever holds fresh values is safe to
// initialize at any point before its owner publishes it.
func freshLocals(p *pkg, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(lhs ast.Expr) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := identObj(p, id); obj != nil {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					if freshExpr(p, rhs) {
						mark(s.Lhs[i])
					}
				}
			} else if len(s.Rhs) == 1 && freshExpr(p, s.Rhs[0]) {
				for _, lhs := range s.Lhs {
					mark(lhs)
				}
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if i < len(s.Names) && freshExpr(p, v) {
					if obj := p.info.Defs[s.Names[i]]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// freshExpr reports whether e builds a value that cannot have been
// published yet: a (pointer to a) composite literal, new(T), or a call
// to a same-package constructor whose name starts with new/New.
func freshExpr(p *pkg, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := ast.Unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok &&
			p.info.Uses[id] == types.Universe.Lookup("new") {
			return true
		}
		fn := p.funcFor(v)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		name := fn.Name()
		return fn.Pkg().Path() == p.path &&
			(strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New"))
	}
	return false
}

// identObj resolves an identifier to its object whether the ident
// defines (:=) or uses (=) the variable.
func identObj(p *pkg, id *ast.Ident) types.Object {
	if obj := p.info.Defs[id]; obj != nil {
		return obj
	}
	return p.info.Uses[id]
}
