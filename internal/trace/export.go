package trace

import (
	"encoding/json"
	"io"
)

// jsonSpan is the JSON Lines wire form of a Span.  Timestamps are
// nanoseconds since the clock epoch; durations are end − start.
// Lineage and the optional arguments are elided when empty so the
// common spans stay one short line.
type jsonSpan struct {
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Name   string   `json:"name"`
	Start  int64    `json:"start_ns"`
	Dur    int64    `json:"dur_ns"`
	Level  *int     `json:"level,omitempty"`
	Bytes  int64    `json:"bytes,omitempty"`
	Count  int64    `json:"count,omitempty"`
	In     []uint64 `json:"in,omitempty"`
	Out    []uint64 `json:"out,omitempty"`
}

// WriteJSONLines writes one JSON object per span, oldest first — the
// grep/jq-friendly export.
func WriteJSONLines(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		sp := &spans[i]
		js := jsonSpan{
			ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			Start: int64(sp.Start), Dur: int64(sp.End - sp.Start),
			Bytes: sp.Bytes, Count: sp.Count, In: sp.In, Out: sp.Out,
		}
		if sp.Level >= 0 {
			lvl := sp.Level
			js.Level = &lvl
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONLines exports the recorder's current spans as JSON Lines.
// Nil-safe: a nil recorder writes nothing.
func (r *Recorder) WriteJSONLines(w io.Writer) error {
	return WriteJSONLines(w, r.Snapshot())
}

// chromeEvent is one complete ("ph":"X") event in the Chrome
// trace-event format; the array form loads directly in chrome://tracing
// and Perfetto.  ts and dur are microseconds (float).
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Level  *int     `json:"level,omitempty"`
	Bytes  int64    `json:"bytes,omitempty"`
	Count  int64    `json:"count,omitempty"`
	In     []uint64 `json:"in,omitempty"`
	Out    []uint64 `json:"out,omitempty"`
}

// WriteChromeTrace writes the spans as a Chrome trace-event JSON
// array.  All spans share pid 1; spans at a known level are laid out
// on one track per level (tid = level+2) so merge storms per level are
// visible as lanes, everything else lands on tid 1.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i := range spans {
		sp := &spans[i]
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: "iamdb", Ph: "X",
			Ts:  float64(sp.Start) / 1e3,
			Dur: float64(sp.End-sp.Start) / 1e3,
			Pid: 1, Tid: 1,
			Args: chromeArgs{
				ID: sp.ID, Parent: sp.Parent,
				Bytes: sp.Bytes, Count: sp.Count,
				In: sp.In, Out: sp.Out,
			},
		}
		if sp.Level >= 0 {
			lvl := sp.Level
			ev.Args.Level = &lvl
			ev.Tid = lvl + 2
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// WriteChromeTrace exports the recorder's current spans in Chrome
// trace-event format.  Nil-safe: a nil recorder writes an empty array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Snapshot())
}
