// Package lsm implements the leveled LSM-tree baselines the paper
// compares against (Sec. 2.1, Fig. 1): an overflow-tolerant,
// single-compaction LevelDB-style profile ("L") and a strict,
// stall-controlled RocksDB-style profile ("R").
//
// Structure: L0 holds whole flushed memtables whose key ranges overlap;
// L1..Ln hold disjoint sorted files.  When L0 reaches its file-count
// trigger, all L0 files merge with the overlapping L1 files; when Li
// exceeds its size threshold, one file (round-robin by key) merges with
// its overlapping Li+1 files.  Every on-disk file is a single-sequence
// MSTable (i.e. an SSTable).
//
// The two profiles model the tuning difference the paper leans on:
//   - ProfileLevelDB rate-limits background work (one compaction step
//     per memtable flush), so under write pressure levels overflow
//     their thresholds — which lowers effective write amplification but
//     lengthens the tuning phase and worsens tail latency (Sec. 6.2).
//   - ProfileRocksDB drains all pending compaction promptly and applies
//     slowdown/stop write stalls, so levels hold their thresholds — no
//     overflow, higher write amplification, controlled latency.
package lsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"iamdb/internal/cache"
	"iamdb/internal/corrupt"
	"iamdb/internal/engine"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/manifest"
	"iamdb/internal/metrics"
	"iamdb/internal/table"
	"iamdb/internal/trace"
	"iamdb/internal/vfs"
)

// Profile selects the baseline tuning.
type Profile int

const (
	// ProfileLevelDB models the paper's tuned LevelDB ("L").
	ProfileLevelDB Profile = iota
	// ProfileRocksDB models the paper's tuned RocksDB ("R").
	ProfileRocksDB
)

func (p Profile) String() string {
	if p == ProfileLevelDB {
		return "LevelDB"
	}
	return "RocksDB"
}

// Config parameterizes the baseline engine.
type Config struct {
	FS    vfs.FS
	Dir   string
	Cache *cache.Cache

	// FileSize is the SSTable target size (paper: 64 MiB).
	FileSize int64
	// LevelSizeBase is L1's size threshold (paper: 640 MiB); each
	// deeper level multiplies by Fanout.
	LevelSizeBase int64
	// Fanout is the size ratio between adjacent levels (default 10).
	Fanout int
	// L0CompactTrigger is the L0 file count that starts a compaction
	// (default 4); slowdown at 2x, stop at 3x.
	L0CompactTrigger int
	// MaxLevels bounds the level count (default 7, L0..L6).
	MaxLevels int
	// Profile picks LevelDB or RocksDB behaviour.
	Profile Profile
	// BitsPerKey sets Bloom density (default 14).
	BitsPerKey int
	// Compression enables flate compression of data blocks.
	Compression bool
	// OnDrop is notified of every record compactions discard (see
	// engine.DropObserver); the DB layer uses it to feed value-log
	// discard statistics.  Nil disables the callback.
	OnDrop engine.DropObserver
	// Events receives structural event notifications (flush, merge,
	// move, ...).  Nil means no-op listeners.
	Events *metrics.EventListener
	// Clock supplies monotonic time for event durations.  Nil means
	// the zero clock: events fire but durations read 0.
	Clock metrics.Clock
	// Trace records structural spans (flush, compaction jobs with file
	// lineage).  Nil disables tracing at zero cost.
	Trace *trace.Recorder
}

func (c *Config) fill() {
	if c.FileSize == 0 {
		c.FileSize = 64 << 20
	}
	if c.LevelSizeBase == 0 {
		c.LevelSizeBase = 640 << 20
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.L0CompactTrigger == 0 {
		c.L0CompactTrigger = 4
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 7
	}
	c.Events = c.Events.EnsureDefaults()
	if c.Clock == nil {
		c.Clock = metrics.NopClock
	}
}

type file struct {
	num  uint64
	tbl  *table.Table
	rng  kv.Range
	refs int32
	// quarantined fences the file after detected corruption: it keeps
	// serving whatever reads still succeed, but is never chosen as
	// compaction input and does not count toward compaction triggers
	// (an uncompactable file would otherwise spin the scheduler).
	quarantined bool
	qreason     string
}

// DB is the baseline leveled LSM engine.  Filesystem-layer locks nest
// below the engine mutex (compaction writes files under mu), and the
// trace recorder's ring lock is a leaf taken while mu is held:
//
//iamlint:lockorder lsm.DB.mu < vfs.*; lsm.DB.mu < trace.Recorder.mu
type DB struct {
	mu  sync.Mutex
	cfg Config

	levels   [][]*file // levels[0] newest-last; levels[1..] sorted by range
	nextFile uint64
	man      *manifest.Log
	horizon  kv.Seq
	logSeq   kv.Seq
	logNum   uint64

	// cursor[i] remembers where round-robin compaction of level i
	// stopped (the LevelDB compact pointer).
	cursor map[int][]byte
	stats  engine.Stats

	// recoveryDropped is the byte count the manifest replay discarded
	// at its tail on open (a torn final append); >0 is suspicious and
	// surfaced to the DB layer via RecoveryDropped.
	recoveryDropped int64
}

var _ engine.Engine = (*DB)(nil)

const manifestName = "MANIFEST"

// Open creates or reopens a baseline LSM in cfg.Dir.
func Open(cfg Config) (*DB, error) {
	cfg.fill()
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, err
	}
	d := &DB{cfg: cfg, horizon: kv.MaxSeq, cursor: make(map[int][]byte)}
	d.levels = make([][]*file, cfg.MaxLevels)
	manPath := cfg.Dir + "/" + manifestName
	if cfg.FS.Exists(manPath) {
		st, dropped, err := manifest.ReplayStrict(cfg.FS, manPath)
		if err != nil {
			return nil, err
		}
		d.recoveryDropped = dropped
		if err := d.loadState(st); err != nil {
			return nil, err
		}
		man, err := manifest.Create(cfg.FS, manPath+".tmp", d.snapshotState())
		if err != nil {
			return nil, err
		}
		if err := cfg.FS.Rename(manPath+".tmp", manPath); err != nil {
			_ = man.Close()
			return nil, err
		}
		d.man = man
	} else {
		d.nextFile = 1
		man, err := manifest.Create(cfg.FS, manPath, d.snapshotState())
		if err != nil {
			return nil, err
		}
		d.man = man
	}
	return d, nil
}

func (d *DB) loadState(st *manifest.State) error {
	d.nextFile = st.NextFile
	d.logSeq = st.LastSeq
	d.logNum = st.LogNum
	for lvl := 0; lvl < len(st.Levels) && lvl < d.cfg.MaxLevels; lvl++ {
		for _, rec := range st.Levels[lvl] {
			tbl, err := table.Open(d.cfg.FS, engine.TableFileName(d.cfg.Dir, rec.FileNum),
				rec.FileNum, table.Options{Cache: d.cfg.Cache, BitsPerKey: d.cfg.BitsPerKey,
					Compression: d.cfg.Compression})
			if err != nil {
				if errors.Is(err, vfs.ErrNotFound) {
					// A manifest that references a table the directory no
					// longer holds is store corruption (typically a rotted
					// manifest record rolling state back past the table's
					// deletion), not a plain I/O failure.
					err = corrupt.New(corrupt.LayerManifest,
						engine.TableFileName(d.cfg.Dir, rec.FileNum), -1,
						manifest.ErrCorrupt, "manifest references a missing table file")
				}
				return fmt.Errorf("lsm: open file %d: %w", rec.FileNum, err)
			}
			f := &file{num: rec.FileNum, tbl: tbl, rng: kv.MakeRange(rec.Lo, rec.Hi), refs: 1}
			if serr := tbl.Suspect(); serr != nil {
				// The table opened on a fallback footer slot or with other
				// evidence of damage: keep it readable but fenced.
				f.quarantined, f.qreason = true, serr.Error()
			}
			d.levels[lvl] = append(d.levels[lvl], f)
		}
	}
	d.sortLevel0()
	for i := 1; i < len(d.levels); i++ {
		d.sortLevel(i)
	}
	return nil
}

func (d *DB) snapshotState() *manifest.State {
	st := &manifest.State{NextFile: d.nextFile, LastSeq: d.logSeq, LogNum: d.logNum,
		NumLevels: d.cfg.MaxLevels}
	st.Levels = make([][]manifest.NodeRecord, len(d.levels))
	for lvl := range d.levels {
		for _, f := range d.levels[lvl] {
			st.Levels[lvl] = append(st.Levels[lvl], d.record(lvl, f))
		}
	}
	return st
}

func (d *DB) record(lvl int, f *file) manifest.NodeRecord {
	return manifest.NodeRecord{Level: lvl, FileNum: f.num, Lo: f.rng.Lo, Hi: f.rng.Hi}
}

func (d *DB) sortLevel0() {
	// L0 files ordered oldest-first by file number; reads walk them
	// newest-first.
	sort.Slice(d.levels[0], func(a, b int) bool {
		return d.levels[0][a].num < d.levels[0][b].num
	})
}

func (d *DB) sortLevel(i int) {
	sort.Slice(d.levels[i], func(a, b int) bool {
		return kv.CompareUser(d.levels[i][a].rng.Lo, d.levels[i][b].rng.Lo) < 0
	})
}

func (d *DB) ref(f *file) { f.refs++ }

func (d *DB) unref(f *file) {
	d.mu.Lock()
	f.refs--
	if f.refs == 0 {
		// Read-only handle of a dropped file; nothing left to flush.
		_ = f.tbl.Close()
	}
	d.mu.Unlock()
}

// deleteFile drops a file from the in-memory structure.  removeFile
// also deletes it on disk — callers pass true only after the manifest
// edit dropping the file is durable, so a crash can never leave the
// manifest naming a missing file.  On a failed edit the file is kept:
// an orphan wastes space but cannot be resurrected — recovery only
// loads files named by the manifest — and Resume rewrites the manifest
// from memory anyway.
func (d *DB) deleteFile(f *file, removeFile bool) {
	d.cfg.Events.TableDeleted(metrics.TableInfo{FileNum: f.num, Level: -1, Bytes: f.tbl.DataSize()})
	f.tbl.EvictBlocks()
	f.refs--
	if f.refs == 0 {
		_ = f.tbl.Close()
	}
	if removeFile {
		_ = d.cfg.FS.Remove(engine.TableFileName(d.cfg.Dir, f.num))
	}
}

// Resume implements engine.Resumer: it rewrites the manifest from the
// in-memory state, healing any divergence left by a failed manifest
// append.  Built beside the old manifest and renamed into place, so a
// crash mid-resume keeps the old one in force.
func (d *DB) Resume() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	manPath := d.cfg.Dir + "/" + manifestName
	man, err := manifest.Create(d.cfg.FS, manPath+".tmp", d.snapshotState())
	if err != nil {
		return err
	}
	if err := d.cfg.FS.Rename(manPath+".tmp", manPath); err != nil {
		_ = man.Close()
		return err
	}
	old := d.man
	d.man = man
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// CheckInvariants implements engine.Checker: every file's range is
// ordered, every table file exists on disk, and levels deeper than L0
// are sorted and disjoint.  Crash-recovery tests use it as an oracle.
func (d *DB) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.levels {
		var prev *file
		for _, f := range d.levels[i] {
			if kv.CompareUser(f.rng.Lo, f.rng.Hi) > 0 {
				return fmt.Errorf("lsm: L%d file %d has inverted range", i, f.num)
			}
			if !d.cfg.FS.Exists(engine.TableFileName(d.cfg.Dir, f.num)) {
				return fmt.Errorf("lsm: L%d file %d missing on disk", i, f.num)
			}
			if i > 0 && prev != nil && kv.CompareUser(prev.rng.Hi, f.rng.Lo) >= 0 {
				return fmt.Errorf("lsm: L%d files %d and %d overlap", i, prev.num, f.num)
			}
			prev = f
		}
	}
	return nil
}

// threshold returns level i's size threshold in bytes.
func (d *DB) threshold(i int) int64 {
	th := d.cfg.LevelSizeBase
	for j := 1; j < i; j++ {
		th *= int64(d.cfg.Fanout)
	}
	return th
}

// levelBytes sums the compactable data bytes of level i.  Quarantined
// files are excluded: they can never be compaction inputs, so counting
// them would leave the scheduler permanently over threshold.
func (d *DB) levelBytes(i int) int64 {
	var n int64
	for _, f := range d.levels[i] {
		if f.quarantined {
			continue
		}
		n += f.tbl.DataSize()
	}
	return n
}

// activeCount counts level i files eligible for compaction.
func (d *DB) activeCount(i int) int {
	n := 0
	for _, f := range d.levels[i] {
		if !f.quarantined {
			n++
		}
	}
	return n
}

// RecoveryDropped reports the manifest bytes dropped as a torn tail
// during the last Open; >0 means the recovered state may lag the last
// acknowledged edit and the DB layer flags it as suspected corruption.
func (d *DB) RecoveryDropped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recoveryDropped
}

// Quarantine implements engine.Quarantiner.
func (d *DB) Quarantine(num uint64, reason string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.levels {
		for _, f := range d.levels[i] {
			if f.num != num {
				continue
			}
			if f.quarantined {
				return false
			}
			f.quarantined, f.qreason = true, reason
			return true
		}
	}
	return false
}

// Quarantined implements engine.Quarantiner.
func (d *DB) Quarantined() []engine.QuarantineInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []engine.QuarantineInfo
	for i := range d.levels {
		for _, f := range d.levels[i] {
			if f.quarantined {
				out = append(out, engine.QuarantineInfo{
					Level: i, FileNum: f.num,
					Path:   engine.TableFileName(d.cfg.Dir, f.num),
					Reason: f.qreason,
				})
			}
		}
	}
	return out
}

// VisitTables implements engine.TableVisitor: fn sees a referenced
// snapshot of the current tree, called without the engine lock so a
// slow scrub does not block writes.
func (d *DB) VisitTables(fn func(level int, num uint64, t *table.Table) error) error {
	type ent struct {
		level int
		f     *file
	}
	d.mu.Lock()
	var ents []ent
	for i := range d.levels {
		for _, f := range d.levels[i] {
			d.ref(f)
			ents = append(ents, ent{i, f})
		}
	}
	d.mu.Unlock()
	var err error
	for _, e := range ents {
		if err == nil {
			err = fn(e.level, e.f.num, e.f.tbl)
		}
		d.unref(e.f)
	}
	return err
}

// SetHorizon implements engine.Engine.
func (d *DB) SetHorizon(h kv.Seq) {
	d.mu.Lock()
	d.horizon = h
	d.mu.Unlock()
}

// SetLogMeta durably records the DB layer's WAL position.
func (d *DB) SetLogMeta(lastSeq kv.Seq, logNum uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.logSeq, d.logNum = lastSeq, logNum
	return d.logEdit(&manifest.Edit{
		LastSeq: lastSeq, SetLastSeq: true,
		LogNum: logNum, SetLogNum: true,
		NextFile: d.nextFile, SetNextFile: true,
	})
}

func (d *DB) logEdit(e *manifest.Edit) error {
	d.cfg.Events.ManifestEdit(metrics.ManifestEditInfo{Adds: len(e.Added), Deletes: len(e.Deleted)})
	return d.man.Append(e)
}

// LogMeta returns the recovered WAL position.
func (d *DB) LogMeta() (kv.Seq, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logSeq, d.logNum
}

// Stats implements engine.Engine.
func (d *DB) Stats() engine.StatsSnapshot { return d.stats.Snapshot() }

// Levels implements engine.Engine.
func (d *DB) Levels() []engine.LevelInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []engine.LevelInfo
	for i := range d.levels {
		info := engine.LevelInfo{Level: i, Nodes: len(d.levels[i])}
		for _, f := range d.levels[i] {
			info.Bytes += f.tbl.DataSize()
			info.Seqs += f.tbl.NumSeqs()
			if f.quarantined {
				info.Quarantined++
			}
		}
		out = append(out, info)
	}
	return out
}

// SpaceUsed implements engine.Engine.
func (d *DB) SpaceUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for i := range d.levels {
		for _, f := range d.levels[i] {
			n += f.tbl.UsedBytes()
		}
	}
	return n
}

// Close implements engine.Engine.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	for i := range d.levels {
		for _, f := range d.levels[i] {
			errs = append(errs, f.tbl.Close())
		}
	}
	errs = append(errs, d.man.Close())
	return errors.Join(errs...)
}

// Get implements engine.Engine: L0 files newest-first, then at most one
// file per deeper level.
func (d *DB) Get(ukey []byte, snap kv.Seq) ([]byte, kv.Kind, kv.Seq, bool, error) {
	d.mu.Lock()
	var cands []*file
	for i := len(d.levels[0]) - 1; i >= 0; i-- {
		f := d.levels[0][i]
		if f.rng.Contains(ukey) {
			d.ref(f)
			cands = append(cands, f)
		}
	}
	for i := 1; i < len(d.levels); i++ {
		if f := d.findFile(i, ukey); f != nil {
			d.ref(f)
			cands = append(cands, f)
		}
	}
	d.mu.Unlock()
	defer func() {
		for _, f := range cands {
			d.unref(f)
		}
	}()
	for _, f := range cands {
		v, k, s, found, err := f.tbl.Get(ukey, snap)
		if err != nil {
			return nil, 0, 0, false, err
		}
		if found {
			return v, k, s, true, nil
		}
	}
	return nil, 0, 0, false, nil
}

func (d *DB) findFile(i int, ukey []byte) *file {
	lvl := d.levels[i]
	idx := sort.Search(len(lvl), func(j int) bool {
		return kv.CompareUser(ukey, lvl[j].rng.Hi) <= 0
	})
	if idx < len(lvl) && lvl[idx].rng.Contains(ukey) {
		return lvl[idx]
	}
	return nil
}

// NewIter implements engine.Engine: every L0 file is its own child (its
// range overlaps the others), deeper levels are concatenated.
func (d *DB) NewIter() iterator.Iterator {
	d.mu.Lock()
	defer d.mu.Unlock()
	var kids []iterator.Iterator
	for i := len(d.levels[0]) - 1; i >= 0; i-- {
		f := d.levels[0][i]
		d.ref(f)
		kids = append(kids, &fileIter{d: d, files: []*file{f}})
	}
	for i := 1; i < len(d.levels); i++ {
		if len(d.levels[i]) == 0 {
			continue
		}
		files := append([]*file(nil), d.levels[i]...)
		for _, f := range files {
			f.refs++
		}
		kids = append(kids, &fileIter{d: d, files: files})
	}
	return iterator.NewMerging(kv.CompareInternal, kids...)
}

// fileIter concatenates disjoint sorted files of one level.
type fileIter struct {
	d      *DB
	files  []*file
	idx    int
	cur    iterator.Iterator
	err    error
	closed bool
}

func (l *fileIter) open(i int) {
	l.idx = i
	if i >= 0 && i < len(l.files) {
		l.cur = l.files[i].tbl.NewIter()
	} else {
		l.cur = nil
	}
}

// First implements iterator.Iterator.
func (l *fileIter) First() {
	l.err = nil
	l.open(0)
	if l.cur != nil {
		l.cur.First()
		l.skip()
	}
}

// Seek implements iterator.Iterator.
func (l *fileIter) Seek(target []byte) {
	l.err = nil
	u := kv.UserKey(target)
	i := sort.Search(len(l.files), func(j int) bool {
		return kv.CompareUser(u, l.files[j].rng.Hi) <= 0
	})
	l.open(i)
	if l.cur != nil {
		l.cur.Seek(target)
		l.skip()
	}
}

// Next implements iterator.Iterator.
func (l *fileIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.Next()
	l.skip()
}

func (l *fileIter) skip() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur = nil
			return
		}
		l.cur.Close()
		l.open(l.idx + 1)
		if l.cur != nil {
			l.cur.First()
		}
	}
}

// Valid implements iterator.Iterator.
func (l *fileIter) Valid() bool { return l.cur != nil && l.cur.Valid() }

// Key implements iterator.Iterator.
func (l *fileIter) Key() []byte {
	if l.cur == nil {
		return nil
	}
	return l.cur.Key()
}

// Value implements iterator.Iterator.
func (l *fileIter) Value() []byte {
	if l.cur == nil {
		return nil
	}
	return l.cur.Value()
}

// Err implements iterator.Iterator.
func (l *fileIter) Err() error { return l.err }

// Close implements iterator.Iterator.
func (l *fileIter) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil {
		err = l.cur.Close()
	}
	for _, f := range l.files {
		l.d.unref(f)
	}
	return err
}

// Last implements iterator.ReverseIterator.
func (l *fileIter) Last() {
	l.err = nil
	l.open(len(l.files) - 1)
	if l.cur != nil {
		l.cur.(iterator.ReverseIterator).Last()
		l.skipBackward()
	}
}

// Prev implements iterator.ReverseIterator.
func (l *fileIter) Prev() {
	if l.cur == nil {
		return
	}
	l.cur.(iterator.ReverseIterator).Prev()
	l.skipBackward()
}

// SeekForPrev implements iterator.ReverseIterator.
func (l *fileIter) SeekForPrev(target []byte) {
	l.err = nil
	u := kv.UserKey(target)
	i := sort.Search(len(l.files), func(j int) bool {
		return kv.CompareUser(l.files[j].rng.Lo, u) > 0
	}) - 1
	if i < 0 {
		l.cur = nil
		l.idx = 0
		return
	}
	l.open(i)
	if l.cur != nil {
		l.cur.(iterator.ReverseIterator).SeekForPrev(target)
		l.skipBackward()
	}
}

func (l *fileIter) skipBackward() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur = nil
			return
		}
		l.cur.Close()
		if l.idx == 0 {
			l.cur = nil
			return
		}
		l.open(l.idx - 1)
		if l.cur != nil {
			l.cur.(iterator.ReverseIterator).Last()
		}
	}
}

// ApproximateSize estimates the data bytes stored in the user-key
// range [lo, hi]: full file sizes for files entirely inside, halves
// for boundary overlaps.
func (d *DB) ApproximateSize(lo, hi []byte) int64 {
	rng := kv.MakeRange(lo, hi)
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for i := range d.levels {
		for _, f := range d.levels[i] {
			if !f.rng.Overlaps(rng) {
				continue
			}
			if rng.Contains(f.rng.Lo) && rng.Contains(f.rng.Hi) {
				total += f.tbl.DataSize()
			} else {
				total += f.tbl.DataSize() / 2
			}
		}
	}
	return total
}
