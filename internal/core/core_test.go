package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"iamdb/internal/cache"
	"iamdb/internal/engine"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/memtable"
	"iamdb/internal/vfs"
)

// testTree builds a small-scale tree: Ct = 8 KiB, t = 4, so splits,
// combines and level growth trigger with kilobytes of data.
func testTree(t *testing.T, policy Policy, budget int64) (*Tree, vfs.FS) {
	t.Helper()
	fs := vfs.NewMemFS()
	tr, err := Open(Config{
		FS: fs, Dir: "db", Cache: cache.New(1 << 20),
		NodeCapacity: 8 * 1024, Fanout: 4, Policy: policy,
		MemBudget: budget, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, fs
}

// loader feeds records through memtables sized to the node capacity,
// flushing as the DB layer would.
type loader struct {
	t    *testing.T
	tr   *Tree
	mt   *memtable.MemTable
	seq  kv.Seq
	capb int64
}

func newLoader(t *testing.T, tr *Tree) *loader {
	return &loader{t: t, tr: tr, mt: memtable.New(), capb: tr.cfg.NodeCapacity}
}

func (l *loader) put(key, val string) {
	l.seq++
	l.mt.Add(l.seq, kv.KindSet, []byte(key), []byte(val))
	if l.mt.ApproximateSize() >= l.capb {
		l.flush()
	}
}

func (l *loader) del(key string) {
	l.seq++
	l.mt.Add(l.seq, kv.KindDelete, []byte(key), nil)
	if l.mt.ApproximateSize() >= l.capb {
		l.flush()
	}
}

func (l *loader) flush() {
	if l.mt.Empty() {
		return
	}
	if err := l.tr.Flush(l.mt.NewIter()); err != nil {
		l.t.Fatal(err)
	}
	l.mt = memtable.New()
}

func checkGet(t *testing.T, tr *Tree, key, want string) {
	t.Helper()
	v, kind, _, found, err := tr.Get([]byte(key), kv.MaxSeq)
	if err != nil {
		t.Fatalf("get %s: %v", key, err)
	}
	if want == "" {
		if found && kind != kv.KindDelete {
			t.Fatalf("get %s: found %q, want absent", key, v)
		}
		return
	}
	if !found || kind != kv.KindSet {
		t.Fatalf("get %s: found=%v kind=%v want %q", key, found, kind, want)
	}
	if string(v) != want {
		t.Fatalf("get %s: %q want %q", key, v, want)
	}
}

func TestFlushIntoEmptyTree(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	l := newLoader(t, tr)
	l.put("alpha", "1")
	l.put("beta", "2")
	l.flush()
	checkGet(t, tr, "alpha", "1")
	checkGet(t, tr, "beta", "2")
	checkGet(t, tr, "gamma", "")
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	lv := tr.Levels()
	if lv[0].Nodes != 1 {
		t.Fatalf("L1 nodes: %+v", lv)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	tr, _ := testTree(t, IAM, 16*1024)
	defer tr.Close()
	l := newLoader(t, tr)
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			l.put(fmt.Sprintf("key%04d", i), fmt.Sprintf("v%d-%d", round, i))
		}
	}
	for i := 0; i < 50; i++ {
		l.del(fmt.Sprintf("key%04d", i))
	}
	l.flush()
	checkGet(t, tr, "key0010", "")
	checkGet(t, tr, "key0100", "v4-100")
	checkGet(t, tr, "key0199", "v4-199")
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func loadRandom(t *testing.T, tr *Tree, n int, seed int64) map[string]string {
	t.Helper()
	l := newLoader(t, tr)
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[string]string)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(n*2))
		v := fmt.Sprintf("val%d", i)
		ref[k] = v
		l.put(k, v)
	}
	l.flush()
	return ref
}

func verifyAgainstRef(t *testing.T, tr *Tree, ref map[string]string) {
	t.Helper()
	// Point reads.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		checkGet(t, tr, k, ref[k])
	}
	// Full scan matches the reference exactly (newest versions).
	it := tr.NewIter()
	defer it.Close()
	got := make(map[string]string)
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		u, _, kind, ok := kv.ParseInternalKey(it.Key())
		if !ok {
			t.Fatal("bad internal key in scan")
		}
		if prev != nil && kv.CompareInternal(prev, it.Key()) > 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		if _, seen := got[string(u)]; !seen && kind == kv.KindSet {
			got[string(u)] = string(it.Value())
		} else if !seen && kind == kv.KindDelete {
			got[string(u)] = "\x00deleted"
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("scan: key %s = %q want %q", k, got[k], v)
		}
	}
}

func TestRandomLoadLSA(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	ref := loadRandom(t, tr, 3000, 1)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstRef(t, tr, ref)
	st := tr.Stats()
	if st.Appends == 0 {
		t.Error("LSA load should append")
	}
	if tr.n() < 2 {
		t.Errorf("tree should have grown, n=%d", tr.n())
	}
}

func TestRandomLoadIAM(t *testing.T) {
	tr, _ := testTree(t, IAM, 24*1024)
	defer tr.Close()
	ref := loadRandom(t, tr, 3000, 2)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstRef(t, tr, ref)
	st := tr.Stats()
	if st.Merges == 0 {
		t.Error("IAM with small budget should merge")
	}
	m, k := tr.MixedLevel()
	if m < 1 || k < 1 || k > 3 {
		t.Errorf("mixed level m=%d k=%d", m, k)
	}
}

func TestIAMMergingLevelsSingleSequence(t *testing.T) {
	tr, _ := testTree(t, IAM, 16*1024)
	defer tr.Close()
	loadRandom(t, tr, 4000, 3)
	m, k := tr.MixedLevel()
	for _, li := range tr.Levels() {
		if li.Level > m && li.Nodes > 0 {
			// Merging levels: one sequence per node, except nodes that
			// were moved down without rewriting (Sec. 6.2) and have not
			// yet been merged; allow that slack.
			if li.Seqs > li.Nodes*k {
				t.Errorf("merging level L%d has %d seqs over %d nodes (m=%d k=%d)",
					li.Level, li.Seqs, li.Nodes, m, k)
			}
		}
		if li.Level == m && li.Nodes > 0 {
			if li.Seqs > li.Nodes*k {
				t.Errorf("mixed level L%d has %d seqs > nodes*k = %d", li.Level, li.Seqs, li.Nodes*k)
			}
		}
	}
}

func TestLSAMultipleSequencesAccumulate(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	loadRandom(t, tr, 4000, 4)
	total := 0
	for _, li := range tr.Levels() {
		total += li.Seqs - li.Nodes // excess sequences beyond one per node
	}
	if total <= 0 {
		t.Error("LSA should accumulate multi-sequence nodes")
	}
}

func TestSequentialLoadWriteOnce(t *testing.T) {
	fs := vfs.NewMemFS()
	var io vfs.IOStats
	sfs := vfs.NewStatsFS(fs, &io)
	tr, err := Open(Config{FS: sfs, Dir: "db", NodeCapacity: 8 * 1024, Fanout: 4, Policy: LSA})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	l := newLoader(t, tr)
	var userBytes int64
	for i := 0; i < 4000; i++ {
		k, v := fmt.Sprintf("seq%08d", i), fmt.Sprintf("value-%08d", i)
		l.put(k, v)
		userBytes += int64(len(k) + len(v))
	}
	l.flush()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Moves == 0 {
		t.Error("sequential load should move nodes down without rewrites")
	}
	// Write amplification of table data should be close to 1: records
	// hit disk once plus block/metadata overhead.
	amp := float64(st.TotalFlushBytes()) / float64(userBytes)
	if amp > 1.8 {
		t.Errorf("sequential write amp %.2f, want near 1", amp)
	}
	checkGet(t, tr, "seq00000000", "value-00000000")
	checkGet(t, tr, "seq00003999", "value-00003999")
}

func TestSkewedLoadTriggersSplits(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	l := newLoader(t, tr)
	rng := rand.New(rand.NewSource(5))
	// Hammer a narrow keyspace so one node's children multiply.
	for i := 0; i < 20000; i++ {
		l.put(fmt.Sprintf("hot%05d", rng.Intn(4000)), fmt.Sprintf("v%d", i))
	}
	l.flush()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Splits == 0 {
		t.Error("skewed load should trigger splits")
	}
	// The worst-write-case avoidance: splits keep fan-out bounded and
	// the tree functional; spot-check reads.
	checkGet(t, tr, "hot99999", "")
}

func TestFanoutBoundHolds(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	loadRandom(t, tr, 6000, 6)
	// After maintenance, internal nodes should have bounded fan-out;
	// allow slack of 2t plus chunk effects between flushes.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	bound := 3 * 2 * tr.cfg.Fanout
	for i := 1; i < tr.n(); i++ {
		for _, nd := range tr.levels[i] {
			if c := len(tr.children(i, nd.rng)); c > bound {
				t.Errorf("L%d node %d has %d children (> %d)", i, nd.num, c, bound)
			}
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr, _ := testTree(t, IAM, 16*1024)
	defer tr.Close()
	l := newLoader(t, tr)
	l.put("k", "old")
	l.flush()
	snapSeq := l.seq
	// Keep the snapshot's version alive through compactions.
	tr.SetHorizon(snapSeq)
	for i := 0; i < 2000; i++ {
		l.put("k", fmt.Sprintf("new%d", i))
		l.put(fmt.Sprintf("fill%05d", i), "x")
	}
	l.flush()
	v, kind, _, found, err := tr.Get([]byte("k"), snapSeq)
	if err != nil || !found || kind != kv.KindSet {
		t.Fatalf("snapshot read: %v %v %v", found, kind, err)
	}
	if string(v) != "old" {
		t.Fatalf("snapshot read got %q want old", v)
	}
	checkGet(t, tr, "k", "new1999")
}

func TestReopenFromManifest(t *testing.T) {
	fs := vfs.NewMemFS()
	cfg := Config{FS: fs, Dir: "db", NodeCapacity: 8 * 1024, Fanout: 4, Policy: IAM, MemBudget: 16 * 1024}
	tr, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(t, tr)
	ref := make(map[string]string)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(5000))
		v := fmt.Sprintf("val%d", i)
		ref[k] = v
		l.put(k, v)
	}
	l.flush()
	if err := tr.SetLogMeta(l.seq, 42); err != nil {
		t.Fatal(err)
	}
	wantLevels := tr.Levels()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	seq, logNum := tr2.LogMeta()
	if seq != l.seq || logNum != 42 {
		t.Fatalf("log meta: %d/%d want %d/42", seq, logNum, l.seq)
	}
	gotLevels := tr2.Levels()
	if fmt.Sprint(gotLevels) != fmt.Sprint(wantLevels) {
		t.Fatalf("levels changed across reopen:\n%v\n%v", wantLevels, gotLevels)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		checkGet(t, tr2, k, v)
	}
}

func TestScanAfterHeavyChurn(t *testing.T) {
	tr, _ := testTree(t, IAM, 16*1024)
	defer tr.Close()
	l := newLoader(t, tr)
	ref := make(map[string]bool)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 8000; i++ {
		k := fmt.Sprintf("u%05d", rng.Intn(3000))
		if rng.Intn(4) == 0 {
			l.del(k)
			delete(ref, k)
		} else {
			l.put(k, "v")
			ref[k] = true
		}
	}
	l.flush()
	it := tr.NewIter()
	defer it.Close()
	live := make(map[string]bool)
	seen := make(map[string]bool)
	for it.First(); it.Valid(); it.Next() {
		u, _, kind, _ := kv.ParseInternalKey(it.Key())
		if seen[string(u)] {
			continue // older version
		}
		seen[string(u)] = true
		if kind == kv.KindSet {
			live[string(u)] = true
		}
	}
	if len(live) != len(ref) {
		t.Fatalf("scan found %d live keys want %d", len(live), len(ref))
	}
	for k := range ref {
		if !live[k] {
			t.Fatalf("missing key %s", k)
		}
	}
}

func TestSeekScan(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	l := newLoader(t, tr)
	for i := 0; i < 5000; i++ {
		l.put(fmt.Sprintf("key%06d", i*2), fmt.Sprintf("v%d", i))
	}
	l.flush()
	it := tr.NewIter()
	defer it.Close()
	it.Seek(kv.MakeInternalKey([]byte("key004001"), kv.MaxSeq, kv.KindSet))
	var got []string
	for n := 0; it.Valid() && n < 3; n++ {
		got = append(got, string(kv.UserKey(it.Key())))
		it.Next()
	}
	want := "[key004002 key004004 key004006]"
	if fmt.Sprint(got) != want {
		t.Fatalf("seek scan: %v want %v", got, want)
	}
}

func TestIAMDegeneratesToLSAWithHugeBudget(t *testing.T) {
	tr, _ := testTree(t, IAM, 1<<40)
	defer tr.Close()
	loadRandom(t, tr, 3000, 9)
	m, _ := tr.MixedLevel()
	if m <= tr.n() {
		t.Errorf("with unbounded memory m should exceed n (m=%d, n=%d)", m, tr.n())
	}
	st := tr.Stats()
	// Only leaf-full merges may occur, as in LSA.
	if st.Merges > st.Appends {
		t.Errorf("degenerate IAM merging too much: %d merges vs %d appends", st.Merges, st.Appends)
	}
}

func TestEngineInterfaceCompliance(t *testing.T) {
	tr, _ := testTree(t, IAM, 16*1024)
	defer tr.Close()
	var e engine.Engine = tr
	if e.NeedsWork() {
		t.Error("tree should not report background work")
	}
	if did, err := e.WorkStep(); did || err != nil {
		t.Error("tree WorkStep should be a no-op")
	}
	if e.StallLevel() != 0 {
		t.Error("tree should not stall")
	}
	if e.SpaceUsed() != 0 {
		t.Error("empty tree should use no space")
	}
}

func TestEmptyFlushIsNoop(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	if err := tr.Flush(iterator.Empty{}); err != nil {
		t.Fatal(err)
	}
	if tr.SpaceUsed() != 0 {
		t.Error("empty flush created data")
	}
}
