package amp

import (
	"math"
	"testing"
)

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSplitAmplificationSmall(t *testing.T) {
	// t=10, n=5: Wsp = 2*(0.2 + 0.04 + 0.008 + 0.0016) = ~0.499
	got := SplitAmplification(Params{N: 5, T: 10})
	if !near(got, 0.49927, 1e-3) {
		t.Fatalf("Wsp = %f", got)
	}
	// n=1: no internal levels, no splits.
	if SplitAmplification(Params{N: 1, T: 10}) != 0 {
		t.Fatal("n=1 should have no split cost")
	}
}

func TestLSAWrite(t *testing.T) {
	// Eq. (3): about n + small split term.
	got := LSAWrite(Params{N: 4, T: 10})
	if got < 4 || got > 4.6 {
		t.Fatalf("Wlsa = %f", got)
	}
}

func TestIAMWriteMatchesPaperShape(t *testing.T) {
	// Paper Sec. 6.2: 1 TB data, 64 GB memory, n=5, m=3, k=3, t=10.
	// The measured IAM amp was 8.71; the formula gives
	// Wsp + 5 + 10/6 + 2*(10/2) = ~17?  No: merging levels are m+1..n
	// = levels 4,5 → + 2*5 = 10... The paper's measured value is lower
	// because level 5 received moves, not merges.  Here we check the
	// formula's internal consistency instead.
	p := Params{N: 5, T: 10, M: 3, K: 3}
	w := IAMWrite(p)
	want := SplitAmplification(p) + 5 + 10.0/6 + 5 + 5
	if !near(w, want, 1e-9) {
		t.Fatalf("Wiam = %f want %f", w, want)
	}
	// Larger k reduces amplification (Table 3's trend).
	w1 := IAMWrite(Params{N: 5, T: 10, M: 3, K: 1})
	w2 := IAMWrite(Params{N: 5, T: 10, M: 3, K: 2})
	w3 := IAMWrite(Params{N: 5, T: 10, M: 3, K: 3})
	if !(w1 > w2 && w2 > w3) {
		t.Fatalf("k trend broken: %f %f %f", w1, w2, w3)
	}
	// Larger m reduces amplification.
	wm2 := IAMWrite(Params{N: 5, T: 10, M: 2, K: 3})
	wm4 := IAMWrite(Params{N: 5, T: 10, M: 4, K: 3})
	if !(wm2 > w3 && w3 > wm4) {
		t.Fatalf("m trend broken: %f %f %f", wm2, w3, wm4)
	}
	// m > n degenerates into LSA.
	if IAMWrite(Params{N: 5, T: 10, M: 6, K: 3}) != LSAWrite(Params{N: 5, T: 10}) {
		t.Fatal("m>n must equal LSA")
	}
}

func TestOrderingLSAbelowIAMbelowLSM(t *testing.T) {
	// Table 1's qualitative ordering, for any mixed level inside the
	// tree.
	for n := 2; n <= 7; n++ {
		for m := 1; m <= n; m++ {
			p := Params{N: n, T: 10, M: m, K: 3}
			lsa, iam, lsm := LSAWrite(p), IAMWrite(p), LSMWrite(p)
			if !(lsa <= iam) {
				t.Fatalf("n=%d m=%d: LSA %f > IAM %f", n, m, lsa, iam)
			}
			if m > 1 && !(iam < lsm) {
				t.Fatalf("n=%d m=%d: IAM %f >= LSM %f", n, m, iam, lsm)
			}
		}
	}
}

func TestAppendedSeqBytesEq1(t *testing.T) {
	// S_{m,k} = Dm (k-1)/t
	got := AppendedSeqBytes(1000, Params{T: 10, K: 3})
	if got != 200 {
		t.Fatalf("S = %d", got)
	}
	if AppendedSeqBytes(1000, Params{T: 10, K: 1}) != 0 {
		t.Fatal("k=1 has no appended sequences")
	}
}

func TestFitsBudgetEq2(t *testing.T) {
	sizes := []int64{0, 100, 1000, 10000} // D1..D3
	p := Params{N: 3, T: 10, M: 3, K: 3}
	// sum_{j<3} = 1100, S_{3,3} = 10000*2/10 = 2000 → needs 3100.
	if !FitsBudget(sizes, 3100, p) {
		t.Fatal("3100 should fit")
	}
	if FitsBudget(sizes, 3099, p) {
		t.Fatal("3099 should not fit")
	}
}

func TestTuneMK(t *testing.T) {
	sizes := []int64{0, 100, 1000, 10000}
	m, k := TuneMK(sizes, 3100, 3, 10)
	if m != 3 || k != 3 {
		t.Fatalf("m=%d k=%d want 3/3", m, k)
	}
	m, k = TuneMK(sizes, 1150, 3, 10)
	// Levels 1,2 fit (1100); mixed level 3: 1100+10000*(k-1)/10 <= 1150
	// fails for k>=2 → k=1.
	if m != 3 || k != 1 {
		t.Fatalf("m=%d k=%d want 3/1", m, k)
	}
	// Everything fits: m = n+1 (pure appends).
	m, k = TuneMK(sizes, 1<<40, 3, 10)
	if m != 4 || k != 3 {
		t.Fatalf("m=%d k=%d want 4/3", m, k)
	}
	// Nothing fits: m=1.
	m, _ = TuneMK(sizes, 10, 3, 10)
	if m != 1 {
		t.Fatalf("m=%d want 1", m)
	}
}

func TestScanAmps(t *testing.T) {
	a := ScanAmps(Params{N: 5, T: 10, M: 3})
	if a.LSM != 3 || a.IAM != 3 {
		t.Fatalf("LSM/IAM scan amp: %+v", a)
	}
	if a.LSA != 15 {
		t.Fatalf("LSA scan amp %f want 15 (5x of LSM, Sec. 5.3.2)", a.LSA)
	}
	if a.LSA/a.IAM != 5 {
		t.Fatal("LSA should be 5x IAM at t=10")
	}
}

func TestLSMWrite(t *testing.T) {
	// Sec. 2.1: "about 11 x (n-1)".
	if got := LSMWrite(Params{N: 6, T: 10}); got != 55 {
		t.Fatalf("LSM amp %f", got)
	}
}
