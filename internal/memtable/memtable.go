// Package memtable implements the in-memory level L0 of LSA/IAM and the
// memtable of the LSM baselines: a lock-free skiplist ordered by
// internal key.  Records accumulate here until the table reaches its
// capacity threshold Ct, whereupon it becomes an immutable memtable and
// is flushed to disk (Sec. 5.2).
//
// Concurrency model (LevelDB/Pebble style, extended to many writers):
// nodes and their key/value bytes are carved from a chunked arena,
// written exactly once, and then published by CAS-ing the predecessor's
// next pointer.  Readers and iterators traverse with atomic loads only
// and never block; concurrent Add callers contend only on the CAS of
// the splice point they are inserting at.  A reader that observes a
// node through a next pointer is guaranteed (by the CAS release/acquire
// edge) to see the node's fully-written ikey and value.
package memtable

import (
	"math/rand"
	"sync/atomic"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

const (
	maxHeight = 12
	branching = 4
)

// heightTab replays the height stream of the historical single-writer
// skiplist (a seeded math/rand source drawn under its lock), so tower
// heights — and therefore ApproximateSize, which structural tests and
// flush boundaries depend on — stay byte-for-byte identical while the
// draw itself becomes one atomic add.  The table cycles after 2^18
// inserts, which only recycles the distribution, never a lock.
const heightTabLen = 1 << 18

var heightTab = func() []uint8 {
	rnd := rand.New(rand.NewSource(0xdeadbeef))
	t := make([]uint8, heightTabLen)
	for i := range t {
		h := uint8(1)
		for h < maxHeight && rnd.Intn(branching) == 0 {
			h++
		}
		t[i] = h
	}
	return t
}()

// node is an atomically-published skiplist element: ikey, value and
// height are written once by the inserting goroutine before the node is
// linked; next pointers are the only mutable fields and are accessed
// atomically.
type node struct {
	ikey   []byte
	value  []byte
	height int32
	next   [maxHeight]atomic.Pointer[node]
}

// MemTable is a skiplist of internal keys.  All methods are safe for
// concurrent use by any number of readers and writers.
type MemTable struct {
	arena  *arena
	head   *node
	height atomic.Int32
	hidx   atomic.Uint64
	size   atomic.Int64
	count  atomic.Int64
}

// New returns an empty memtable.
func New() *MemTable {
	a := newArena()
	head := a.newNode()
	head.height = maxHeight
	m := &MemTable{arena: a, head: head}
	m.height.Store(1)
	return m
}

// randomHeight draws a tower height with P(h+1|h) = 1/branching: one
// atomic add walks the precomputed stream, so concurrent draws are
// race-free and the sequence stays deterministic per insertion order.
func (m *MemTable) randomHeight() int {
	return int(heightTab[(m.hidx.Add(1)-1)%heightTabLen])
}

// findGreaterOrEqual returns the first node with ikey >= key.
func (m *MemTable) findGreaterOrEqual(key []byte) *node {
	x := m.head
	level := int(m.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && kv.CompareInternal(next.ikey, key) < 0 {
			x = next
			continue
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findSpliceFrom walks level from start (which must sort before key)
// and returns the insertion point: the last node < key and its
// successor.
func (m *MemTable) findSpliceFrom(start *node, key []byte, level int) (prev, next *node) {
	p := start
	for {
		n := p.next[level].Load()
		if n == nil || kv.CompareInternal(n.ikey, key) >= 0 {
			return p, n
		}
		p = n
	}
}

// findSplices computes the per-level insertion points for key.
func (m *MemTable) findSplices(key []byte, prev, next *[maxHeight]*node) {
	lh := int(m.height.Load())
	for i := lh; i < maxHeight; i++ {
		prev[i], next[i] = m.head, nil
	}
	x := m.head
	for level := lh - 1; level >= 0; level-- {
		p, n := m.findSpliceFrom(x, key, level)
		prev[level], next[level] = p, n
		x = p
	}
}

// Add inserts a record.  Internal keys are unique (sequence numbers
// never repeat within a memtable), so Add never overwrites.  Concurrent
// Add callers never block readers; a failed CAS re-searches only the
// level it lost.
func (m *MemTable) Add(seq kv.Seq, kind kv.Kind, ukey, value []byte) {
	kbuf := m.arena.alloc(len(ukey) + kv.TrailerLen)
	ikey := kv.AppendInternalKey(kbuf[:0], ukey, seq, kind)
	var val []byte
	if len(value) > 0 {
		val = m.arena.alloc(len(value))
		copy(val, value)
	}
	h := m.randomHeight()
	n := m.arena.newNode()
	n.ikey, n.value, n.height = ikey, val, int32(h)

	// Raise the list height first; a reader that sees the new height
	// before the node links just walks empty upper levels.
	for {
		lh := m.height.Load()
		if int32(h) <= lh || m.height.CompareAndSwap(lh, int32(h)) {
			break
		}
	}

	var prev, next [maxHeight]*node
	m.findSplices(ikey, &prev, &next)
	// Link bottom-up: once level 0 succeeds the node is visible to
	// every search; upper levels are an acceleration structure and may
	// lag briefly.
	for level := 0; level < h; level++ {
		p, x := prev[level], next[level]
		for {
			n.next[level].Store(x)
			if p.next[level].CompareAndSwap(x, n) {
				break
			}
			p, x = m.findSpliceFrom(p, ikey, level)
		}
	}
	m.size.Add(int64(len(ikey) + len(value) + 16*h))
	m.count.Add(1)
}

// Get returns the newest record for ukey visible at snapshot snap.
func (m *MemTable) Get(ukey []byte, snap kv.Seq) (value []byte, kind kv.Kind, seq kv.Seq, found bool) {
	target := kv.MakeInternalKey(ukey, snap, kv.MaxKind)
	n := m.findGreaterOrEqual(target)
	if n == nil {
		return nil, 0, 0, false
	}
	u, s, k, ok := kv.ParseInternalKey(n.ikey)
	if !ok || kv.CompareUser(u, ukey) != 0 {
		return nil, 0, 0, false
	}
	return n.value, k, s, true
}

// ApproximateSize reports the bytes the table occupies, the quantity
// compared against the capacity threshold Ct.
func (m *MemTable) ApproximateSize() int64 { return m.size.Load() }

// Count reports the number of records.
func (m *MemTable) Count() int { return int(m.count.Load()) }

// Empty reports whether the table has no records.
func (m *MemTable) Empty() bool { return m.Count() == 0 }

// NewIter iterates the table in internal-key order.  The iterator sees
// a live view and never blocks writers; records inserted after a
// positioning call may or may not be observed.
func (m *MemTable) NewIter() iterator.Iterator { return &iter{m: m} }

type iter struct {
	m *MemTable
	n *node
}

// First implements iterator.Iterator.
func (it *iter) First() { it.n = it.m.head.next[0].Load() }

// Seek implements iterator.Iterator.
func (it *iter) Seek(target []byte) { it.n = it.m.findGreaterOrEqual(target) }

// Next implements iterator.Iterator.
func (it *iter) Next() {
	if it.n != nil {
		it.n = it.n.next[0].Load()
	}
}

// Valid implements iterator.Iterator.
func (it *iter) Valid() bool { return it.n != nil }

// Key implements iterator.Iterator.
func (it *iter) Key() []byte {
	if it.n == nil {
		return nil
	}
	return it.n.ikey
}

// Value implements iterator.Iterator.
func (it *iter) Value() []byte {
	if it.n == nil {
		return nil
	}
	return it.n.value
}

// Err implements iterator.Iterator.
func (it *iter) Err() error { return nil }

// Close implements iterator.Iterator.
func (it *iter) Close() error { return nil }

// findLessThan returns the last node with ikey < key, or nil.
func (m *MemTable) findLessThan(key []byte) *node {
	x := m.head
	level := int(m.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && kv.CompareInternal(next.ikey, key) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the final node, or nil when empty.
func (m *MemTable) findLast() *node {
	x := m.head
	level := int(m.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// Last implements iterator.ReverseIterator.
func (it *iter) Last() { it.n = it.m.findLast() }

// Prev implements iterator.ReverseIterator.  Skiplists have forward
// pointers only, so each step re-descends from the head (O(log n), the
// LevelDB approach).
func (it *iter) Prev() {
	if it.n == nil {
		return
	}
	it.n = it.m.findLessThan(it.n.ikey)
}

// SeekForPrev implements iterator.ReverseIterator.
func (it *iter) SeekForPrev(target []byte) {
	n := it.m.findGreaterOrEqual(target)
	if n != nil && kv.CompareInternal(n.ikey, target) == 0 {
		it.n = n
	} else {
		it.n = it.m.findLessThan(target)
	}
}
