// Package metrics is the storage engine's observability substrate: a
// stdlib-only registry of atomic counters and gauges, concurrency-safe
// latency histograms, an injectable monotonic clock, and the structured
// EventListener the engines fire compaction events through.
//
// Everything here is deterministic by construction — the package never
// reads the wall clock or the OS (it is inside the iamlint determinism
// scope); time always arrives through a Clock the caller injects.  The
// public DB layer injects real monotonic time, the experiment harness
// injects the virtual disk clock, and tests inject a ManualClock.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iamdb/internal/histogram"
)

// Clock is a monotonic time source: Now reports elapsed time since an
// arbitrary fixed epoch.  Implementations must be safe for concurrent
// use.  vfs.DiskClock satisfies Clock with virtual device time; the DB
// layer's default wires real monotonic time.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to Clock.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// ManualClock is a Clock tests drive by hand.
type ManualClock struct {
	d atomic.Int64
}

// Now implements Clock.
func (c *ManualClock) Now() time.Duration { return time.Duration(c.d.Load()) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.d.Add(int64(d)) }

// NopClock is the zero time source: Now is always 0.  Engines opened
// without an injected clock use it, so durations read as zero rather
// than lying.
var NopClock Clock = nopClock{}

type nopClock struct{}

func (nopClock) Now() time.Duration { return 0 }

// Counter is a monotonically increasing atomic counter.  The zero
// value is ready to use; all methods are safe for concurrent use and
// allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.  The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry names counters, gauges and histograms.  Get-or-create
// registration takes a lock; the returned instruments are lock-free,
// so hot paths resolve their instruments once and hold the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*histogram.Concurrent
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*histogram.Concurrent),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *histogram.Concurrent {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = histogram.NewConcurrent()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered instrument,
// JSON-friendly by construction.  Snapshots taken from a Registry also
// carry full histogram data (unexported, not serialized) so Delta can
// compute true interval percentiles, not summary arithmetic.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]histogram.Summary

	hists map[string]*histogram.H
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]histogram.Summary, len(r.hists)),
		hists:      make(map[string]*histogram.H, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		full := h.Snapshot()
		s.hists[name] = full
		s.Histograms[name] = full.Summary()
	}
	return s
}

// Delta returns the interval snapshot s − prev: counters are
// subtracted (an instrument absent from prev counts from zero), gauges
// keep their current value (they are instantaneous, not cumulative),
// and histograms are diffed bucket-wise so the interval summaries
// report true per-window percentiles.  Both snapshots should come from
// the same registry with prev taken earlier.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]histogram.Summary, len(s.Histograms)),
		hists:      make(map[string]*histogram.H, len(s.hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.hists {
		d := h
		if ph, ok := prev.hists[name]; ok {
			d = h.Sub(ph)
		}
		out.hists[name] = d
		out.Histograms[name] = d.Summary()
	}
	// A snapshot without full data (hand-built, e.g. in tests) still
	// diffs what it can: summaries pass through unchanged.
	for name, sum := range s.Histograms {
		if _, ok := out.Histograms[name]; !ok {
			out.Histograms[name] = sum
		}
	}
	return out
}

// String renders the snapshot with one sorted "name value" line per
// instrument, for logs and CLI output.
func (s Snapshot) String() string {
	var b strings.Builder
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(&b, "%s %d\n", name, v)
		} else {
			fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[name])
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%s n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
			name, h.Count, h.Mean, h.P50, h.P99, h.P999, h.Max)
	}
	return b.String()
}
