package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck enforces the repo's lock discipline: every sync.Mutex /
// sync.RWMutex Lock() or RLock() inside a function must be released
// before every return path of that same function, either by a matching
// `defer Unlock()` or by explicit Unlock calls on each path.
//
// The pass runs a conservative path-sensitive walk over each function
// body.  Lock identity is the source text of the receiver expression
// ("db.mu", "h.f.mu"), plus the read/write mode, so distinct mutexes
// reached through the same expression text are treated as one — which
// matches how this codebase names locks.  Intentional cross-function
// handoffs (none exist today) would use //iamlint:ignore lockcheck.
func lockcheck(p *pkg, emit func(diag)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			c := &lockChecker{p: p, emit: emit}
			held := c.checkBlock(body.List, lockSet{})
			for key, pos := range held {
				c.report(body.Rbrace, key, pos)
			}
			// Function literals are visited separately when encountered;
			// returning true would double-visit nested literals, but the
			// walk of the outer body skips statement-level literals only
			// through GoStmt/DeferStmt handling, so keep descending.
			return true
		})
	}
}

// lockSet maps lock key -> position of the Lock call.
type lockSet map[string]ast.Node

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

type lockChecker struct {
	p        *pkg
	emit     func(diag)
	deferred map[string]bool // keys released by a defer for the rest of the function
}

func (c *lockChecker) report(at token.Pos, key string, lockPos ast.Node) {
	i := strings.LastIndexByte(key, '/')
	name, mode := key[:i], key[i+1:]
	lock, unlock := "Lock", "Unlock"
	if mode == "r" {
		lock, unlock = "RLock", "RUnlock"
	}
	c.emit(diag{
		pass: "lockcheck",
		pos:  c.p.fset.Position(at),
		msg: fmt.Sprintf("%s.%s() at line %d is not released on this path (add defer %s.%s() or unlock before returning)",
			name, lock, c.p.fset.Position(lockPos.Pos()).Line, name, unlock),
	})
}

// otherModeKey flips the read/write mode suffix of a lock key.
func otherModeKey(key string) string {
	if strings.HasSuffix(key, "/w") {
		return key[:len(key)-1] + "r"
	}
	return key[:len(key)-1] + "w"
}

// reportModeMismatch flags a release whose mode does not match the
// acquisition still held: RLock released by Unlock (which would
// corrupt an RWMutex's state) or Lock released by RUnlock.
func (c *lockChecker) reportModeMismatch(at token.Pos, heldKey string) {
	i := strings.LastIndexByte(heldKey, '/')
	name, heldMode := heldKey[:i], heldKey[i+1:]
	took, right, wrong := "Lock", "Unlock", "RUnlock"
	if heldMode == "r" {
		took, right, wrong = "RLock", "RUnlock", "Unlock"
	}
	c.emit(diag{
		pass: "lockcheck",
		pos:  c.p.fset.Position(at),
		msg: fmt.Sprintf("%s.%s() released by %s() — mode mismatch, use %s.%s()",
			name, took, wrong, name, right),
	})
}

// releaseWithModeCheck removes key from held; if the same mutex is
// held in the opposite mode instead, that is a mode-mismatched
// release — report it and clear the mismatched entry so it is not
// also reported as leaked.
func (c *lockChecker) releaseWithModeCheck(at token.Pos, key string, held lockSet) {
	if _, ok := held[key]; !ok && !c.deferred[key] {
		other := otherModeKey(key)
		if _, heldOther := held[other]; heldOther {
			c.reportModeMismatch(at, other)
			delete(held, other)
		}
	}
	delete(held, key)
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the lock key and whether it
// acquires (true) or releases (false).
func (c *lockChecker) lockCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	name := sel.Sel.Name
	var mode string
	switch name {
	case "Lock", "Unlock":
		mode = "w"
	case "RLock", "RUnlock":
		mode = "r"
	default:
		return "", false, false
	}
	// Require the method to come from package sync, so arbitrary
	// Lock()/Unlock() methods on app types don't confuse the pass.
	// Fall back to a receiver-name heuristic when types are missing.
	if fn := c.p.funcFor(call); fn != nil {
		if pkgPathOf(fn) != "sync" {
			return "", false, false
		}
	} else if !receiverLooksLikeMutex(sel.X) {
		return "", false, false
	}
	return types.ExprString(sel.X) + "/" + mode, name == "Lock" || name == "RLock", true
}

func receiverLooksLikeMutex(x ast.Expr) bool {
	switch e := x.(type) {
	case *ast.Ident:
		return looksMu(e.Name)
	case *ast.SelectorExpr:
		return looksMu(e.Sel.Name)
	}
	return false
}

func looksMu(name string) bool {
	n := len(name)
	return name == "mu" || (n >= 2 && (name[n-2:] == "mu" || name[n-2:] == "Mu")) ||
		(n >= 5 && (name[n-5:] == "mutex" || name[n-5:] == "Mutex"))
}

// checkBlock walks stmts with the set of held locks, reporting any
// return reached while a lock is held.  It returns the locks still
// held after the block falls through its end.
func (c *lockChecker) checkBlock(stmts []ast.Stmt, held lockSet) lockSet {
	if c.deferred == nil {
		c.deferred = make(map[string]bool)
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acquire, ok := c.lockCall(call); ok {
					if acquire {
						if !c.deferred[key] {
							held[key] = s
						}
					} else {
						c.releaseWithModeCheck(s.Pos(), key, held)
					}
					continue
				}
				if isTerminatorCall(call) {
					return lockSet{}
				}
			}
		case *ast.DeferStmt:
			for _, key := range deferredUnlocks(c, s) {
				c.releaseWithModeCheck(s.Pos(), key, held)
				c.deferred[key] = true
			}
		case *ast.ReturnStmt:
			for key, pos := range held {
				c.report(s.Pos(), key, pos)
			}
			return lockSet{}
		case *ast.BranchStmt:
			// break/continue/goto leave the block; balanced use around
			// loops is the caller's concern, so stop scanning here.
			return lockSet{}
		case *ast.BlockStmt:
			held = c.checkBlock(s.List, held)
		case *ast.IfStmt:
			held = c.checkIf(s, held)
		case *ast.ForStmt:
			exit := c.checkBlock(s.Body.List, held.clone())
			held = union(held, exit)
			if s.Cond == nil && !hasBreak(s.Body) {
				// `for {}` with no break never falls through; anything
				// after is unreachable.
				return lockSet{}
			}
		case *ast.RangeStmt:
			exit := c.checkBlock(s.Body.List, held.clone())
			held = union(held, exit)
		case *ast.SwitchStmt:
			held = c.checkCases(s.Body, held, false)
		case *ast.TypeSwitchStmt:
			held = c.checkCases(s.Body, held, false)
		case *ast.SelectStmt:
			held = c.checkCases(s.Body, held, true)
		case *ast.LabeledStmt:
			held = c.checkBlock([]ast.Stmt{s.Stmt}, held)
		}
	}
	return held
}

// checkIf handles both branches and merges the fall-through states:
// a lock is considered held after the if when any non-terminating path
// still holds it.
func (c *lockChecker) checkIf(s *ast.IfStmt, held lockSet) lockSet {
	bodyExit := c.checkBlock(s.Body.List, held.clone())
	bodyTerm := terminates(s.Body.List)
	if s.Else == nil {
		if bodyTerm {
			return held
		}
		return union(held, bodyExit)
	}
	var elseExit lockSet
	var elseTerm bool
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseExit = c.checkBlock(e.List, held.clone())
		elseTerm = terminates(e.List)
	case *ast.IfStmt:
		elseExit = c.checkIf(e, held.clone())
		elseTerm = false // nested else-if fall-through handled by union
	}
	switch {
	case bodyTerm && elseTerm:
		return lockSet{}
	case bodyTerm:
		return elseExit
	case elseTerm:
		return bodyExit
	default:
		return union(bodyExit, elseExit)
	}
}

func (c *lockChecker) checkCases(body *ast.BlockStmt, held lockSet, isSelect bool) lockSet {
	merged := held
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		exit := c.checkBlock(stmts, held.clone())
		if !terminates(stmts) {
			merged = union(merged, exit)
		}
	}
	_ = hasDefault // without a default the zero-case fall-through keeps `held`, already merged
	_ = isSelect
	return merged
}

// deferredUnlocks returns lock keys released by a defer statement:
// either `defer mu.Unlock()` directly or unlock calls inside a
// deferred func literal.
func deferredUnlocks(c *lockChecker, s *ast.DeferStmt) []string {
	var keys []string
	if key, acquire, ok := c.lockCall(s.Call); ok && !acquire {
		return []string{key}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, acquire, ok := c.lockCall(call); ok && !acquire {
					keys = append(keys, key)
				}
			}
			return true
		})
	}
	return keys
}

// terminates reports whether a statement list always transfers control
// out (return, panic, break/continue, or an endless for).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return isTerminatorCall(call)
		}
	case *ast.ForStmt:
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = terminates([]ast.Stmt{e})
		}
		return terminates(s.Body.List) && elseTerm
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return (x.Name == "os" && fun.Sel.Name == "Exit") ||
				(x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break inside belongs to the inner statement
		}
		return !found
	})
	return found
}

func union(a, b lockSet) lockSet {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}
