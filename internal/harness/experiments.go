package harness

import (
	"fmt"
	"time"

	"iamdb"
	"iamdb/internal/vfs"
	"iamdb/internal/ycsb"
)

// Scale maps the paper's testbed sizes to laptop-sized datasets with
// the same ratios.  "100G" class preserves the paper's 100 GB : 16 GB
// data-to-RAM ratio (6.25:1); "1T" preserves 1 TB : 64 GB (16:1).
type Scale struct {
	Name        string
	Records100G uint64
	Records1T   uint64
	Ct          int64
	ValueSize   int
	// WorkloadOps is the operation count for YCSB runs.
	WorkloadOps int
}

// The datasets keep the paper's dataset-to-node-capacity multiplier:
// 100 GB over Ct = 128 MiB is 800x, which puts the data's tail in L4
// and (with the scaled cache) the mixed level at L3, exactly the
// regime of Tables 3 and 4.  The 1T class uses 2400x — it deepens the
// leaf level rather than opening L5 (the paper's 8192x would; that
// full ratio is reproducible with cmd/iambench -scale=full).

// SmallScale keeps `go test -bench` runs manageable.
var SmallScale = Scale{
	Name: "small", Records100G: 25600, Records1T: 76800,
	Ct: 32 * 1024, ValueSize: 1024, WorkloadOps: 4000,
}

// MediumScale is the default for cmd/iambench.
var MediumScale = Scale{
	Name: "medium", Records100G: 51200, Records1T: 153600,
	Ct: 64 * 1024, ValueSize: 1024, WorkloadOps: 10000,
}

// Class identifies one of the paper's three test environments.
type Class struct {
	Name string
	Disk vfs.DiskProfile
	// OneT selects the 1 TB-class dataset and RAM ratio.
	OneT bool
}

// The paper's three environments (Sec. 6.1).
var (
	ClassSSD100G = Class{Name: "SSD-100G", Disk: vfs.SSDProfile()}
	ClassHDD100G = Class{Name: "HDD-100G", Disk: vfs.HDDProfile()}
	ClassHDD1T   = Class{Name: "HDD-1T", Disk: vfs.HDDProfile(), OneT: true}
)

// ConfigFor builds the experiment config for an engine in a class.
func (s Scale) ConfigFor(e iamdb.EngineKind, c Class, threads int) Config {
	records := s.Records100G
	ratio := int64(25) // 100 GB : 16 GB = 6.25 : 1, times 4 for /4 below
	if c.OneT {
		records = s.Records1T
		ratio = 64 // 1 TB : 64 GB = 16 : 1, times 4
	}
	data := int64(records) * int64(s.ValueSize)
	return Config{
		Engine: e, Disk: c.Disk, Records: records,
		ValueSize: s.ValueSize, Ct: s.Ct,
		CacheBytes: data * 4 / ratio,
		Threads:    threads, Seed: 1,
	}
}

// engines used across experiments, in the paper's presentation order.
var paperEngines = []iamdb.EngineKind{iamdb.LevelDB, iamdb.RocksDB, iamdb.LSA, iamdb.IAM}

func engineTag(e iamdb.EngineKind, threads int) string {
	switch e {
	case iamdb.LevelDB:
		return "L"
	case iamdb.RocksDB:
		return fmt.Sprintf("R-%dt", threads)
	case iamdb.LSA:
		return fmt.Sprintf("A-%dt", threads)
	default:
		return fmt.Sprintf("I-%dt", threads)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// Table1 measures the qualitative amplification comparison of Table 1:
// write amplification from a hash load, scan read amplification as
// disk seeks per scanned level, and space amplification after an
// overwrite pass.
func (s Scale) Table1() (Table, error) {
	t := Table{
		Title:  "Table 1: amplifications of LSM (RocksDB profile), LSA and IAM",
		Header: []string{"engine", "write-amp", "seeks/scan", "space-amp"},
	}
	for _, e := range []iamdb.EngineKind{iamdb.RocksDB, iamdb.LSA, iamdb.IAM} {
		env, err := NewEnv(s.ConfigFor(e, ClassSSD100G, 1))
		if err != nil {
			return t, err
		}
		if _, err := env.HashLoad(); err != nil {
			env.Close()
			return t, err
		}
		load, err := env.Overwrite()
		if err != nil {
			env.Close()
			return t, err
		}
		if _, err := env.Settle(); err != nil {
			env.Close()
			return t, err
		}
		// Scan read amplification: seeks per 100-record scan.
		runner := ycsb.NewRunner(ycsb.WorkloadE, env.Cfg.Records, 5)
		before := env.stats.Snapshot()
		const scans = 200
		for i := 0; i < scans; i++ {
			op := runner.Next()
			it := env.DB.NewIterator()
			it.Seek(op.Key)
			for n := 0; it.Valid() && n < 100; n++ {
				it.Next()
			}
			it.Close()
		}
		seeks := float64(env.stats.Snapshot().Sub(before).Seeks) / scans
		logical := int64(env.Cfg.Records) * int64(env.Cfg.ValueSize)
		space := float64(env.SpaceUsed()) / float64(logical)
		t.Rows = append(t.Rows, []string{
			e.String(), f2(load.WriteAmp), f2(seeks), f2(space)})
		env.Close()
	}
	return t, nil
}

// Table2 verifies the append-tree characteristics of Table 2: LSA/IAM
// avoid the worst write case (bounded fan-out via splits), keep
// sequential loads rewrite-free (write amp ~1 via metadata moves), and
// support scans.  The FLSM-style always-rewrite behaviour is shown by
// the same sequential load through the merge-everywhere baseline.
func (s Scale) Table2() (Table, error) {
	t := Table{
		Title:  "Table 2: append-tree traits under sequential load",
		Header: []string{"engine", "seq-write-amp", "moves", "splits", "scan-ok"},
	}
	for _, e := range []iamdb.EngineKind{iamdb.RocksDB, iamdb.LSA, iamdb.IAM} {
		env, err := NewEnv(s.ConfigFor(e, ClassSSD100G, 1))
		if err != nil {
			return t, err
		}
		res, err := env.SeqLoad()
		if err != nil {
			env.Close()
			return t, err
		}
		m := env.DB.Metrics()
		scan, err := env.ReadSeq()
		if err != nil {
			env.Close()
			return t, err
		}
		scanOK := "yes"
		if scan.Ops != int(env.Cfg.Records) {
			scanOK = fmt.Sprintf("BROKEN(%d)", scan.Ops)
		}
		t.Rows = append(t.Rows, []string{
			e.String(), f2(res.WriteAmp),
			fmt.Sprint(m.Engine.Moves), fmt.Sprint(m.Engine.Splits), scanOK})
		env.Close()
	}
	return t, nil
}

// Table3 reproduces Table 3: per-level write amplification of IAM
// after a hash load with the mixed level pinned at L3 and k swept.
func (s Scale) Table3() (Table, error) {
	t := Table{
		Title:  "Table 3: IAM per-level write amp, mixed level L3, k swept",
		Header: []string{"k", "L1", "L2", "L3", "L4", "total"},
	}
	for k := 1; k <= 3; k++ {
		cfg := s.ConfigFor(iamdb.IAM, ClassSSD100G, 1)
		cfg.FixedM = 3
		cfg.K = k
		env, err := NewEnv(cfg)
		if err != nil {
			return t, err
		}
		res, err := env.HashLoad()
		if err != nil {
			env.Close()
			return t, err
		}
		row := []string{fmt.Sprint(k)}
		for lvl := 1; lvl <= 4; lvl++ {
			if lvl < len(res.PerLevel) {
				row = append(row, f2(res.PerLevel[lvl]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, f2(res.WriteAmp))
		t.Rows = append(t.Rows, row)
		env.Close()
	}
	return t, nil
}

// Table4 reproduces Table 4: per-level write amplification after the
// 1 TB-class hash load for L, R-1t, R-4t, A-1t, A-4t, I-1t and I-4t.
func (s Scale) Table4() (Table, error) {
	t := Table{
		Title:  "Table 4: per-level write amp, 1T-class hash load",
		Header: []string{"config", "L0", "L1", "L2", "L3", "L4", "L5", "sum"},
	}
	type combo struct {
		e       iamdb.EngineKind
		threads int
	}
	combos := []combo{
		{iamdb.LevelDB, 1},
		{iamdb.RocksDB, 1}, {iamdb.RocksDB, 4},
		{iamdb.LSA, 1}, {iamdb.LSA, 4},
		{iamdb.IAM, 1}, {iamdb.IAM, 4},
	}
	for _, c := range combos {
		env, err := NewEnv(s.ConfigFor(c.e, ClassHDD1T, c.threads))
		if err != nil {
			return t, err
		}
		res, err := env.HashLoad()
		if err != nil {
			env.Close()
			return t, err
		}
		row := []string{engineTag(c.e, c.threads)}
		for lvl := 0; lvl <= 5; lvl++ {
			if lvl < len(res.PerLevel) && res.PerLevel[lvl] > 0 {
				row = append(row, f2(res.PerLevel[lvl]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, f2(res.WriteAmp))
		t.Rows = append(t.Rows, row)
		env.Close()
	}
	return t, nil
}

// queryWorkloads are the workloads of Table 5 / Figure 8.
var queryWorkloads = []ycsb.Workload{
	ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadG,
}

// Table5 reproduces Table 5: 99% latencies of the query-intensive
// workloads per environment class.
func (s Scale) Table5() (Table, error) {
	t := Table{
		Title:  "Table 5: 99% latencies (per class: SSD-100G, HDD-100G, HDD-1T)",
		Header: []string{"config", "class", "B", "C", "D", "E", "G"},
	}
	for _, class := range []Class{ClassSSD100G, ClassHDD100G, ClassHDD1T} {
		for _, e := range paperEngines {
			env, err := NewEnv(s.ConfigFor(e, class, 1))
			if err != nil {
				return t, err
			}
			if _, err := env.HashLoad(); err != nil {
				env.Close()
				return t, err
			}
			row := []string{engineTag(e, 1), class.Name}
			for _, w := range queryWorkloads {
				ops := s.WorkloadOps
				if w.MaxScanLen >= 1000 {
					ops = s.WorkloadOps / 10 // long scans: fewer ops
				}
				r, err := env.RunWorkload(w, ops)
				if err != nil {
					env.Close()
					return t, err
				}
				row = append(row, ms(r.P99))
			}
			t.Rows = append(t.Rows, row)
			env.Close()
		}
	}
	return t, nil
}

// Figure6 reproduces Fig. 6: hash-load throughput per class,
// normalized to the LevelDB profile.
func (s Scale) Figure6() (Table, error) {
	t := Table{
		Title:  "Figure 6: hash-load throughput normalized to L",
		Header: []string{"class", "L(kops)", "R-1t", "A-1t", "I-1t"},
	}
	for _, class := range []Class{ClassSSD100G, ClassHDD100G, ClassHDD1T} {
		var base float64
		row := []string{class.Name}
		for _, e := range paperEngines {
			env, err := NewEnv(s.ConfigFor(e, class, 1))
			if err != nil {
				return t, err
			}
			res, err := env.HashLoad()
			env.Close()
			if err != nil {
				return t, err
			}
			if e == iamdb.LevelDB {
				base = res.OpsPerSec
				row = append(row, fmt.Sprintf("%.1fk", base/1000))
			} else {
				row = append(row, f2(res.OpsPerSec/base))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// allWorkloads is Fig. 7's x-axis.
var allWorkloads = []ycsb.Workload{
	ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD,
	ycsb.WorkloadE, ycsb.WorkloadF, ycsb.WorkloadG,
}

// Figure7 reproduces Fig. 7a/b/c: YCSB workload throughput normalized
// to the LevelDB profile, per class.  Runs begin right after the load,
// so the baselines' tuning phase drags their average as in the paper.
func (s Scale) Figure7(class Class) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Figure 7 (%s): YCSB throughput normalized to L", class.Name),
		Header: []string{"workload", "L(ops/s)", "R-1t", "A-1t", "I-1t"},
	}
	per := make(map[string][]float64) // workload -> by engine
	for _, e := range paperEngines {
		env, err := NewEnv(s.ConfigFor(e, class, 1))
		if err != nil {
			return t, err
		}
		if _, err := env.HashLoad(); err != nil {
			env.Close()
			return t, err
		}
		for _, w := range allWorkloads {
			ops := s.WorkloadOps
			if w.MaxScanLen >= 1000 {
				ops = s.WorkloadOps / 10
			}
			r, err := env.RunWorkload(w, ops)
			if err != nil {
				env.Close()
				return t, err
			}
			per[w.Name] = append(per[w.Name], r.OpsPerSec)
		}
		env.Close()
	}
	for _, w := range allWorkloads {
		v := per[w.Name]
		row := []string{w.Name, fmt.Sprintf("%.0f", v[0])}
		for i := 1; i < len(v); i++ {
			row = append(row, f2(v[i]/v[0]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8 reproduces Fig. 8: stable throughput (after the tuning
// phase) of the query-intensive workloads, SSD 100G class.
func (s Scale) Figure8() (Table, error) {
	t := Table{
		Title:  "Figure 8: stable throughput, query-intensive, SSD-100G",
		Header: []string{"workload", "L(ops/s)", "R-1t", "A-1t", "I-1t"},
	}
	per := make(map[string][]float64)
	for _, e := range paperEngines {
		env, err := NewEnv(s.ConfigFor(e, ClassSSD100G, 1))
		if err != nil {
			return t, err
		}
		if _, err := env.HashLoad(); err != nil {
			env.Close()
			return t, err
		}
		if _, err := env.Settle(); err != nil { // tuning phase completes
			env.Close()
			return t, err
		}
		for _, w := range queryWorkloads {
			ops := s.WorkloadOps
			if w.MaxScanLen >= 1000 {
				ops = s.WorkloadOps / 10
			}
			r, err := env.RunWorkload(w, ops)
			if err != nil {
				env.Close()
				return t, err
			}
			per[w.Name] = append(per[w.Name], r.OpsPerSec)
		}
		env.Close()
	}
	for _, w := range queryWorkloads {
		v := per[w.Name]
		row := []string{w.Name, fmt.Sprintf("%.0f", v[0])}
		for i := 1; i < len(v); i++ {
			row = append(row, f2(v[i]/v[0]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure9 reproduces Fig. 9: sequential load (fillseq) and long-range
// scan (readseq) throughput on SSD and HDD, normalized to L.
func (s Scale) Figure9() (Table, error) {
	t := Table{
		Title:  "Figure 9: fillseq / readseq throughput normalized to L",
		Header: []string{"test", "L(kops)", "R-1t", "A-1t", "I-1t"},
	}
	for _, class := range []Class{ClassSSD100G, ClassHDD100G} {
		var fillBase, readBase float64
		fillRow := []string{"fillseq-" + class.Disk.Name}
		readRow := []string{"readseq-" + class.Disk.Name}
		for _, e := range paperEngines {
			env, err := NewEnv(s.ConfigFor(e, class, 1))
			if err != nil {
				return t, err
			}
			fill, err := env.SeqLoad()
			if err != nil {
				env.Close()
				return t, err
			}
			read, err := env.ReadSeq()
			env.Close()
			if err != nil {
				return t, err
			}
			if e == iamdb.LevelDB {
				fillBase, readBase = fill.OpsPerSec, read.OpsPerSec
				fillRow = append(fillRow, fmt.Sprintf("%.1fk", fillBase/1000))
				readRow = append(readRow, fmt.Sprintf("%.1fk", readBase/1000))
			} else {
				fillRow = append(fillRow, f2(fill.OpsPerSec/fillBase))
				readRow = append(readRow, f2(read.OpsPerSec/readBase))
			}
		}
		t.Rows = append(t.Rows, fillRow, readRow)
	}
	return t, nil
}

// Figure10 reproduces Fig. 10: space usage after fillseq, hash load,
// fillrandom and overwrite (SSD 100G class; the paper notes space is
// impervious to the medium).
func (s Scale) Figure10() (Table, error) {
	t := Table{
		Title:  "Figure 10: space usage (MiB) after write tests",
		Header: []string{"test", "L", "R-1t", "A-1t", "I-1t"},
	}
	mib := func(n int64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }
	tests := []struct {
		name string
		run  func(*Env) error
	}{
		{"fillseq", func(e *Env) error { _, err := e.SeqLoad(); return err }},
		{"hash-load", func(e *Env) error { _, err := e.HashLoad(); return err }},
		{"fillrandom", func(e *Env) error { _, err := e.RandomLoad(); return err }},
		{"overwrite", func(e *Env) error {
			if _, err := e.HashLoad(); err != nil {
				return err
			}
			_, err := e.Overwrite()
			return err
		}},
	}
	for _, test := range tests {
		row := []string{test.name}
		for _, e := range paperEngines {
			env, err := NewEnv(s.ConfigFor(e, ClassSSD100G, 1))
			if err != nil {
				return t, err
			}
			if err := test.run(env); err != nil {
				env.Close()
				return t, err
			}
			row = append(row, mib(env.SpaceUsed()))
			env.Close()
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// TuningPhase quantifies Sec. 6.2's "tuning phase": the disk time each
// engine still owes after a hash load to move all data overflows down.
// The paper attributes LevelDB's unstable early performance and IamDB's
// quick stabilization to this debt.
func (s Scale) TuningPhase() (Table, error) {
	t := Table{
		Title:  "Tuning phase: leftover compaction debt after hash load",
		Header: []string{"config", "load(disk-s)", "tuning(disk-s)", "debt-ratio"},
	}
	for _, e := range paperEngines {
		env, err := NewEnv(s.ConfigFor(e, ClassSSD100G, 1))
		if err != nil {
			return t, err
		}
		res, err := env.HashLoad()
		if err != nil {
			env.Close()
			return t, err
		}
		tune, err := env.Settle()
		if err != nil {
			env.Close()
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			engineTag(e, 1),
			fmt.Sprintf("%.2f", res.DiskTime.Seconds()),
			fmt.Sprintf("%.2f", tune.Seconds()),
			fmt.Sprintf("%.2f", tune.Seconds()/res.DiskTime.Seconds()),
		})
		env.Close()
	}
	return t, nil
}
